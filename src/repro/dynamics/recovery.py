"""Self-healing: restart wrappers and resilience metrics.

The paper's committee algorithms are terminating transformations, not
self-stabilizing protocols: a perturbation in the middle of a committee
phase can invalidate the invariants their correctness proofs rest on.
Repair therefore follows the classic self-stabilization round model —
the adversary strikes a *quiescent* network, damage is detected, and the
algorithm re-enters its transformation on the damaged topology as a
fresh initial network (DESIGN.md note 8):

    build -> strike -> (target broken?) -> repair -> strike -> ...

:func:`run_self_healing` drives that loop for any registered transform
and any :class:`~repro.dynamics.adversary.Adversary`; each repair
episode is an ordinary engine run, so every episode inherits the
engine's hot path, legality guard, and determinism.  Resilience is
summarized by :class:`RecoveryMetrics`: rounds-to-recover per strike,
total repair activations, and the round/activation *stretch* relative
to the unperturbed baseline build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from ..engine import Metrics, Network, RunResult, aggregate_metrics
from ..errors import ConfigurationError
from ..graphs.validate import (
    is_binary_tree,
    is_spanning_star,
    is_spanning_tree,
    tree_depth,
)
from .adversary import Adversary, Perturbation


# ----------------------------------------------------------------------
# target predicates (graph -> bool): has the adversary broken the target?
# ----------------------------------------------------------------------


def star_target(graph: nx.Graph) -> bool:
    """GraphToStar's target: a spanning star centered at the max UID."""
    return is_spanning_star(graph, center=max(graph.nodes()))


def wreath_target(graph: nx.Graph, c: float = 3.0, slack: int = 3) -> bool:
    """GraphToWreath's target: a shallow binary tree rooted at the max UID."""
    root = max(graph.nodes())
    if not is_spanning_tree(graph) or not is_binary_tree(graph, root):
        return False
    n = graph.number_of_nodes()
    budget = int(c * math.ceil(math.log2(max(2, n)))) + slack
    return tree_depth(graph, root) <= budget


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class StrikeRecord:
    """One adversary strike and the repair (if any) that answered it."""

    strike: int
    perturbation: Perturbation
    damaged: bool
    repair_rounds: int = 0
    repair_activations: int = 0


@dataclass
class RecoveryMetrics:
    """Resilience summary of a self-healing run."""

    strikes: int
    repairs: int
    rounds_to_recover: list
    repair_rounds: int
    repair_activations: int
    round_stretch: float
    activation_stretch: float

    def as_dict(self) -> dict:
        return {
            "strikes": self.strikes,
            "repairs": self.repairs,
            "mean_rounds_to_recover": (
                sum(self.rounds_to_recover) / len(self.rounds_to_recover)
                if self.rounds_to_recover
                else 0.0
            ),
            "repair_rounds": self.repair_rounds,
            "repair_activations": self.repair_activations,
            "round_stretch": self.round_stretch,
            "activation_stretch": self.activation_stretch,
        }


@dataclass
class SelfHealingResult:
    """Everything produced by one build-strike-repair history.

    Exposes the same measurement surface as :class:`RunResult`
    (``rounds``, ``metrics``, ``final_graph()``), so a self-healing
    scenario sweeps and tabulates like any other algorithm; ``metrics``
    aggregates all episodes (totals summed, watermarks maxed).
    """

    episodes: list = field(default_factory=list)
    strikes: list = field(default_factory=list)
    graph: nx.Graph = None
    metrics: Metrics = None
    recovery: RecoveryMetrics = None
    trace = None  # episode traces live on the episodes themselves

    @property
    def baseline(self) -> RunResult:
        """The unperturbed initial build (episode 0)."""
        return self.episodes[0]

    @property
    def rounds(self) -> int:
        return sum(ep.rounds for ep in self.episodes)

    def final_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.graph.nodes())
        g.add_edges_from(self.graph.edges())
        return g


# ----------------------------------------------------------------------
# the self-healing loop
# ----------------------------------------------------------------------


def run_self_healing(
    graph: nx.Graph,
    transform: Callable,
    adversary: Adversary,
    *,
    target_check: Callable[[nx.Graph], bool],
    strikes: int = 3,
    runner_kwargs: dict | None = None,
) -> SelfHealingResult:
    """Build the target, strike it ``strikes`` times, repair as needed.

    Each strike calls ``adversary.strike`` on the quiescent target
    network (ungated, so every strike round counts); if the perturbed
    topology fails ``target_check``, ``transform`` re-runs on it as a
    fresh initial network.  Deterministic: one seeded adversary, reset
    at entry, drives the whole history.
    """
    if strikes < 0:
        raise ConfigurationError(f"strikes must be >= 0, got {strikes}")
    kwargs = dict(runner_kwargs or {})
    adversary.reset()

    baseline = transform(graph, **kwargs)
    episodes = [baseline]
    current = baseline.final_graph()
    strike_records: list = []
    clock = baseline.rounds

    for s in range(1, strikes + 1):
        view = Network(current)
        clock += 1
        pert = adversary.strike(view, clock)
        if pert is None:
            pert = Perturbation(round=clock)
            strike_records.append(StrikeRecord(strike=s, perturbation=pert, damaged=False))
            continue
        view.apply_external(
            drops=pert.drops, adds=pert.adds, crashes=pert.crashes, joins=pert.joins
        )
        current = view.snapshot_graph()
        record = StrikeRecord(strike=s, perturbation=pert, damaged=not target_check(current))
        if record.damaged:
            repair = transform(current, **kwargs)
            episodes.append(repair)
            current = repair.final_graph()
            clock += repair.rounds
            record.repair_rounds = repair.rounds
            record.repair_activations = repair.metrics.total_activations
        strike_records.append(record)

    metrics = aggregate_metrics(ep.metrics for ep in episodes)
    rounds_to_recover = [r.repair_rounds for r in strike_records if r.damaged]
    recovery = RecoveryMetrics(
        strikes=len(strike_records),
        repairs=len(rounds_to_recover),
        rounds_to_recover=rounds_to_recover,
        repair_rounds=sum(rounds_to_recover),
        repair_activations=sum(r.repair_activations for r in strike_records),
        round_stretch=(
            metrics.rounds / baseline.rounds if baseline.rounds else 1.0
        ),
        activation_stretch=(
            metrics.total_activations / baseline.metrics.total_activations
            if baseline.metrics.total_activations
            else 1.0
        ),
    )
    return SelfHealingResult(
        episodes=episodes,
        strikes=strike_records,
        graph=current,
        metrics=metrics,
        recovery=recovery,
    )
