"""External (adversarial) dynamics: churn injection and self-healing.

The paper's model is purely *actively* dynamic; this package adds the
external side — seeded adversaries that drop edges, crash nodes, and
join nodes at round boundaries — plus restart-based recovery wrappers
and resilience metrics.  See DESIGN.md, "External dynamics".

``repro.dynamics.scenarios`` is deliberately not imported here: it pulls
in the algorithm layer and is loaded lazily by the sweep registry.
"""

from .adversary import (
    ADVERSARY_KINDS,
    POLICIES,
    Adversary,
    AdversarySpec,
    ChurnSchedule,
    CrashAdversary,
    EdgeDropAdversary,
    Perturbation,
    ScriptedAdversary,
    make_adversary,
)
from .recovery import (
    RecoveryMetrics,
    SelfHealingResult,
    StrikeRecord,
    run_self_healing,
    star_target,
    wreath_target,
)

__all__ = [
    "ADVERSARY_KINDS",
    "Adversary",
    "AdversarySpec",
    "ChurnSchedule",
    "CrashAdversary",
    "EdgeDropAdversary",
    "POLICIES",
    "Perturbation",
    "RecoveryMetrics",
    "ScriptedAdversary",
    "SelfHealingResult",
    "StrikeRecord",
    "make_adversary",
    "run_self_healing",
    "star_target",
    "wreath_target",
]
