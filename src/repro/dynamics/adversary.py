"""External (adversarial) dynamics: perturbation schedules over a run.

The paper's model is *actively* dynamic — the algorithm alone reshapes
the topology.  This module adds the complementary *externally* dynamic
behaviour studied by the passively/adversarially dynamic literature
(Emek & Uitto's finite-state dynamic networks, Parzych & Daymude's
adaptive self-organization): an :class:`Adversary` emits per-round
:class:`Perturbation` batches — edge drops, node crashes, node joins —
that the runner applies at round boundaries, outside the model's
legality rules (DESIGN.md note 8).

Every adversary is seeded and deterministic: the same (initial network,
program, adversary seed) always produces the same perturbation sequence,
so perturbed runs sweep in parallel byte-identically to serial ones.

Connectivity policies
---------------------
The engine's algorithms assume a connected network, so each stochastic
adversary takes a ``policy``:

* ``"skip"`` — a drop/crash that would disconnect the current network is
  skipped (mirrors the engine's legality guard: connectivity is never
  broken);
* ``"reroute"`` — the drop/crash happens, and the adversary immediately
  re-wires the cut with fresh external edges between the separated
  components (models churn in an overlay: a failed link or relay is
  replaced by a new, different link).

Adversary-created edges fold into the external baseline edge set
``E(1)`` (they were not activated by the algorithm, so they must not
count toward the paper's activation measures).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from ..engine.actions import edge_key
from ..errors import ConfigurationError

POLICIES = ("skip", "reroute")

ADVERSARY_KINDS = ("drop", "crash", "churn")


@dataclass(frozen=True)
class Perturbation:
    """One round boundary's worth of external events.

    ``round`` is the round at whose *beginning* the events are visible.
    ``drops``/``adds`` are canonical edge keys; ``crashes`` is a tuple of
    uids; ``joins`` is a tuple of ``(uid, attach_uids)`` pairs — the new
    node joins with external edges to each uid in ``attach_uids``.
    """

    round: int
    drops: tuple = ()
    adds: tuple = ()
    crashes: tuple = ()
    joins: tuple = ()

    def __bool__(self) -> bool:
        return bool(self.drops or self.adds or self.crashes or self.joins)

    def summary(self) -> str:
        parts = []
        if self.drops:
            parts.append(f"-{len(self.drops)}e")
        if self.adds:
            parts.append(f"+{len(self.adds)}e")
        if self.crashes:
            parts.append(f"-{len(self.crashes)}v")
        if self.joins:
            parts.append(f"+{len(self.joins)}v")
        return f"r{self.round}:" + ",".join(parts or ["noop"])


@dataclass(frozen=True)
class AdversarySpec:
    """A picklable, hashable description of an adversary.

    Sweep cells and CLI flags carry specs, not adversary instances: the
    instance (with its RNG state) is constructed *inside* each cell via
    :func:`make_adversary`, which is what keeps parallel perturbed sweeps
    byte-identical to serial ones.
    """

    kind: str = "drop"
    rate: float = 0.1
    seed: int = 1
    policy: str = "skip"
    start: int = 5
    period: int = 5

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; known: {ADVERSARY_KINDS}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown adversary policy {self.policy!r}; known: {POLICIES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"adversary rate must be in [0, 1], got {self.rate}")
        if self.period < 1 or self.start < 1:
            raise ConfigurationError("adversary start/period must be >= 1")

    def label(self) -> str:
        """Deterministic identifier covering every spec field, so a row's
        recorded adversary is reproducible from its label alone."""
        return (
            f"{self.kind}(rate={self.rate:g},seed={self.seed},"
            f"policy={self.policy},start={self.start},period={self.period})"
        )


def make_adversary(spec) -> "Adversary":
    """Instantiate a fresh adversary from a spec (or a kind string)."""
    if isinstance(spec, Adversary):
        return spec
    if isinstance(spec, str):
        spec = AdversarySpec(kind=spec)
    if not isinstance(spec, AdversarySpec):
        raise ConfigurationError(f"cannot build an adversary from {spec!r}")
    common = dict(
        rate=spec.rate, seed=spec.seed, policy=spec.policy,
        start=spec.start, period=spec.period,
    )
    if spec.kind == "drop":
        return EdgeDropAdversary(**common)
    if spec.kind == "crash":
        return CrashAdversary(**common)
    return ChurnSchedule(**common)


# ----------------------------------------------------------------------
# graph helpers (operate on the Network read protocol: nodes/neighbors)
# ----------------------------------------------------------------------


def _mutable_adj(network) -> dict:
    """A private adjacency copy the policy machinery may mutate."""
    return {u: set(network.neighbors(u)) for u in network.nodes}


def _component(adj: dict, start, stop_at=None) -> set:
    """The component of ``start``; with ``stop_at``, abandon the walk the
    moment that node is reached (early-exit reachability test)."""
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                if v == stop_at:
                    seen.add(v)
                    return seen
                seen.add(v)
                stack.append(v)
    return seen


def _connected(adj: dict) -> bool:
    if len(adj) <= 1:
        return True
    return len(_component(adj, next(iter(adj)))) == len(adj)


def _reroute_pair(comp_a: set, comp_b: set, forbidden) -> tuple | None:
    """The lexicographically smallest cross-component pair != forbidden."""
    for a in sorted(comp_a):
        for b in sorted(comp_b):
            if edge_key(a, b) != forbidden:
                return edge_key(a, b)
    return None


# ----------------------------------------------------------------------
# adversaries
# ----------------------------------------------------------------------


class Adversary:
    """Base protocol: a seeded generator of per-round perturbations.

    Subclasses implement :meth:`strike` — produce one perturbation from
    the current network state.  :meth:`perturb` is what the runner calls
    every round boundary; it gates strikes on ``start``/``period`` so
    that off-rounds cost one integer comparison.  :meth:`reset` rewinds
    the RNG so one instance can drive several identical runs.
    """

    name = "adversary"

    def __init__(self, rate: float = 0.1, seed: int = 1, *,
                 policy: str = "skip", start: int = 5, period: int = 5) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown adversary policy {policy!r}; known: {POLICIES}"
            )
        self.rate = rate
        self.seed = seed
        self.policy = policy
        self.start = start
        self.period = period
        self.reset()

    def reset(self) -> None:
        """Rewind to the initial RNG state (fresh run, same schedule)."""
        self._rng = random.Random(self.seed)
        # High-watermark of every integer uid ever observed or created.
        # Fresh join uids must clear it: a crashed node's uid may exceed
        # every *surviving* uid, and uids are never reused.
        self._uid_floor = -1

    def perturb(self, network, round_no: int) -> Perturbation | None:
        """The runner's round-boundary hook (gated on start/period)."""
        if round_no < self.start or (round_no - self.start) % self.period:
            return None
        return self.strike(network, round_no)

    def strike(self, network, round_no: int) -> Perturbation | None:
        """Produce one perturbation from the current state (ungated)."""
        raise NotImplementedError

    # -- shared policy machinery ---------------------------------------

    def _drop_edges(self, network, candidates: list, adj: dict) -> tuple[list, list]:
        """Apply the connectivity policy to an ordered candidate list.

        Mutates ``adj`` as drops/reroutes are accepted, so later
        candidates see earlier decisions.  Returns (drops, adds).
        """
        drops: list = []
        adds: list = []
        for u, v in candidates:
            adj[u].discard(v)
            adj[v].discard(u)
            # Early-exit walk: on a non-bridge (the common case) this
            # stops as soon as it finds v, instead of scanning the graph.
            comp_u = _component(adj, u, stop_at=v)
            if v in comp_u:
                drops.append(edge_key(u, v))
                continue
            if self.policy == "skip":
                adj[u].add(v)
                adj[v].add(u)
                continue
            comp_v = _component(adj, v)
            repair = _reroute_pair(comp_u, comp_v, edge_key(u, v))
            if repair is None:  # two singletons: nothing else can reconnect
                adj[u].add(v)
                adj[v].add(u)
                continue
            a, b = repair
            adj[a].add(b)
            adj[b].add(a)
            drops.append(edge_key(u, v))
            adds.append(repair)
        return drops, adds

    def _crash_nodes(self, network, candidates: list, adj: dict) -> tuple[list, list]:
        """Crash candidates under the connectivity policy (mutates adj)."""
        crashes: list = []
        adds: list = []
        for u in candidates:
            if len(adj) <= 2:  # never crash the network down to nothing
                break
            removed = adj.pop(u)
            for v in removed:
                adj[v].discard(u)
            if not _connected(adj):
                if self.policy == "skip":
                    adj[u] = removed
                    for v in removed:
                        adj[v].add(u)
                    continue
                # reroute: chain the shattered components back together
                comps = []
                seen: set = set()
                for w in sorted(adj):
                    if w not in seen:
                        comp = _component(adj, w)
                        seen |= comp
                        comps.append(min(comp))
                anchor = comps[0]
                for other in comps[1:]:
                    adj[anchor].add(other)
                    adj[other].add(anchor)
                    adds.append(edge_key(anchor, other))
            crashes.append(u)
        return crashes, adds


class EdgeDropAdversary(Adversary):
    """Drops each active edge independently with probability ``rate``."""

    name = "drop"

    def strike(self, network, round_no: int) -> Perturbation | None:
        rng = self._rng
        candidates = [e for e in sorted(network.edges()) if rng.random() < self.rate]
        if not candidates:
            return None
        adj = _mutable_adj(network)
        drops, adds = self._drop_edges(network, candidates, adj)
        if not drops:
            return None
        return Perturbation(round=round_no, drops=tuple(drops), adds=tuple(adds))


class CrashAdversary(Adversary):
    """Crashes each node independently with probability ``rate``."""

    name = "crash"

    def strike(self, network, round_no: int) -> Perturbation | None:
        rng = self._rng
        candidates = [u for u in sorted(network.nodes) if rng.random() < self.rate]
        if not candidates:
            return None
        adj = _mutable_adj(network)
        crashes, adds = self._crash_nodes(network, candidates, adj)
        if not crashes:
            return None
        return Perturbation(round=round_no, crashes=tuple(crashes), adds=tuple(adds))


class ChurnSchedule(Adversary):
    """Concurrent churn: crashes like :class:`CrashAdversary` plus joins.

    Each strike joins ``Binomial(1, rate)`` fresh nodes (new maximal
    integer UIDs), each attached to ``fanout`` distinct surviving nodes,
    and crashes existing nodes at the same ``rate`` under the policy.
    """

    name = "churn"

    def __init__(self, rate: float = 0.1, seed: int = 1, *,
                 policy: str = "skip", start: int = 5, period: int = 5,
                 fanout: int = 2) -> None:
        self.fanout = fanout
        super().__init__(rate, seed, policy=policy, start=start, period=period)

    def strike(self, network, round_no: int) -> Perturbation | None:
        rng = self._rng
        candidates = [u for u in sorted(network.nodes) if rng.random() < self.rate]
        wants_join = rng.random() < self.rate
        adj = _mutable_adj(network)
        # Observe the uid watermark before anything crashes this strike:
        # uids are never reused, even after their node is long gone.
        ints = [u for u in adj if isinstance(u, int)]
        all_int = len(ints) == len(adj)
        if ints:
            self._uid_floor = max(self._uid_floor, max(ints))
        crashes, adds = self._crash_nodes(network, candidates, adj)
        joins: list = []
        if wants_join:
            if not all_int:
                raise ConfigurationError(
                    "node joins require integer UIDs so fresh labels stay comparable"
                )
            uid = self._uid_floor + 1
            self._uid_floor = uid
            survivors = sorted(adj)
            attach = tuple(rng.sample(survivors, min(self.fanout, len(survivors))))
            joins.append((uid, attach))
        if not crashes and not joins:
            return None
        return Perturbation(
            round=round_no,
            adds=tuple(adds),
            crashes=tuple(crashes),
            joins=tuple(joins),
        )


class ScriptedAdversary(Adversary):
    """A deterministic one-shot schedule: ``{round: events}``.

    ``events`` is either a :class:`Perturbation` or a mapping with any of
    the keys ``drops``/``adds``/``crashes``/``joins``.  No connectivity
    policy is applied — the script is trusted verbatim (the engine's
    guard still catches a script that disconnects a guarded run).
    """

    name = "scripted"

    def __init__(self, script: Mapping | None = None) -> None:
        self._script = dict(script or {})
        super().__init__(rate=0.0, seed=0)

    def perturb(self, network, round_no: int) -> Perturbation | None:
        return self.strike(network, round_no)

    def strike(self, network, round_no: int) -> Perturbation | None:
        events = self._script.get(round_no)
        if events is None:
            return None
        if isinstance(events, Perturbation):
            if events.round != round_no:
                events = Perturbation(
                    round=round_no, drops=events.drops, adds=events.adds,
                    crashes=events.crashes, joins=events.joins,
                )
            return events
        return Perturbation(
            round=round_no,
            drops=tuple(edge_key(u, v) for u, v in events.get("drops", ())),
            adds=tuple(edge_key(u, v) for u, v in events.get("adds", ())),
            crashes=tuple(events.get("crashes", ())),
            joins=tuple((uid, tuple(att)) for uid, att in events.get("joins", ())),
        )
