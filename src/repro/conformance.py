"""Online conformance checking: the paper's bounds as round observers.

Each :class:`InvariantChecker` is a
:class:`~repro.engine.observers.RoundObserver` that verifies one
invariant *while the run executes* (constant memory, no materialized
trace) and reports a :class:`Verdict` afterwards.  Scenarios declare
their invariants on the :class:`~repro.registry.ScenarioSpec`
(``invariants=``); ``repro run/sweep --check`` builds the checkers and
enforces or stamps the verdicts.

The invariant families (see DESIGN.md, "Observer pipeline &
conformance", for the paper references):

* ``connectivity`` — the active graph stays connected after every
  committed round and every adversary strike (the paper's algorithms
  never break connectivity; Lemma 2.1-style safety).
* ``temporal-legality`` — the *effective* action stream is legal over
  time: every activation joins two currently-non-adjacent nodes at
  distance exactly 2, every deactivation removes a currently active
  edge, and the per-round ``active_edges``/``activated_edges`` counters
  are consistent with the replayed edge set.  This is what catches a
  tampered trace.
* ``rounds:log`` / ``rounds:polylog`` — round-count envelopes
  ``c*log2(n) + k`` / ``c*log2(n)^2 + k`` per run segment (O(log n)
  GraphToStar, O(log^2 n) wreath constructions).
* ``edges:linear`` / ``edges:nlogn`` / ``edges:quadratic`` — per-round
  budget on ``|E(i) \\ E(1)|`` (activated edges watermark).
* ``activations:nlogn`` / ``activations:quadratic`` — cumulative
  total-activation budget per segment (O(n log n) for the
  edge-efficient transforms vs Theta(n^2) for the clique baseline).

Checkers recompute their size-dependent bounds at every
``on_run_start`` from the segment's own network, so multi-segment
results (pipelines, self-healing episodes, churned node counts) are
bounded per segment.  Budget constants are deliberately generous
envelopes — they assert the *asymptotic shape* with slack, not the
tightest constant — and are calibrated against the full registry corpus
(``tests/test_conformance.py`` keeps them all-green).

:func:`check_trace` replays a recorded trace through the same checkers,
so archived JSONL can be audited offline with identical semantics.
"""

from __future__ import annotations

import math
import os

from .engine.observers import RoundObserver
from .engine.trace import PerturbationRecord, Trace, sorted_edges, split_segments
from .errors import ConfigurationError, InvariantViolation

__all__ = [
    "BUDGETS",
    "ConnectivityChecker",
    "EdgeBudgetChecker",
    "InvariantChecker",
    "InvariantViolation",
    "RoundBoundChecker",
    "TemporalLegalityChecker",
    "TotalActivationChecker",
    "Verdict",
    "check_trace",
    "check_trace_parallel",
    "enforce",
    "make_checkers",
    "verdict_columns",
]

#: Cap on retained failure details: verdicts stay constant-memory even
#: when an invariant fails on every round of a long run.
_MAX_DETAILS = 4

#: Control characters escaped out of :attr:`Verdict.cell` so one verdict
#: always occupies one CSV/table cell (str node labels can smuggle
#: newlines into failure details via their reprs).
_CELL_ESCAPES = str.maketrans({"\\": "\\\\", "\n": "\\n", "\r": "\\r", "\t": "\\t"})


def _lbl(x) -> str:
    """A node label as embedded in failure details.

    Ints (the normal uid scheme) print bare, exactly as before; str
    labels print as their repr, so a label containing ``, `` or ``; ``
    cannot be confused with the detail's own pair/failure separators
    (the sweep-CSV corruption fixed in PR 10).
    """
    return repr(x) if isinstance(x, str) else str(x)


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


class Verdict:
    """The outcome of one invariant over one (multi-segment) execution."""

    __slots__ = ("invariant", "ok", "detail")

    def __init__(self, invariant: str, ok: bool, detail: str = "") -> None:
        self.invariant = invariant
        self.ok = ok
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else f"FAIL ({self.detail})"
        return f"Verdict({self.invariant}: {status})"

    @property
    def cell(self) -> str:
        """Compact table/CSV cell value (``ok`` or ``FAIL: ...``).

        The detail is sanitized for single-cell embedding: backslashes
        and control characters (newline/CR/tab) are backslash-escaped,
        so a multi-failure detail round-trips through ``SweepResult``
        CSV export as exactly one field (the csv module handles ``,``
        and quotes by quoting; embedded newlines, though legal in
        quoted CSV, break line-oriented consumers and are escaped
        here).  Plain details are returned unchanged.
        """
        if self.ok:
            return "ok"
        return f"FAIL: {self.detail.translate(_CELL_ESCAPES)}"


class InvariantChecker(RoundObserver):
    """Base class: failure accounting shared by every checker."""

    #: The registry name this checker was built from (set by make_checkers).
    name = "invariant"

    #: Checkers never retain the round's effective sets beyond the
    #: ``on_round`` call, so the bulk backend may hand them a borrowed
    #: :class:`~repro.engine.observers.RawRound` view instead of paying
    #: the ``frozenset`` materialization a ``RoundRecord`` requires
    #: (the record-stream analogue of PR 7's telemetry-probe exclusion).
    accepts_raw_rounds = True

    def __init__(self) -> None:
        self._failures: list = []
        self._suppressed = 0
        self._segment = 0

    def _fail(self, detail: str) -> None:
        if len(self._failures) < _MAX_DETAILS:
            self._failures.append(detail)
        else:
            self._suppressed += 1

    @property
    def ok(self) -> bool:
        return not self._failures

    def verdict(self) -> Verdict:
        detail = "; ".join(self._failures)
        if self._suppressed:
            detail += f"; +{self._suppressed} more"
        return Verdict(self.name, self.ok, detail)

    def on_run_start(self, network) -> None:
        self._segment += 1

    def _where(self, round_no) -> str:
        return f"segment {self._segment} round {round_no}"


# ----------------------------------------------------------------------
# structural invariants (replay the edge set from the record stream)
# ----------------------------------------------------------------------


class _EdgeReplay(InvariantChecker):
    """Shared machinery: maintain the active adjacency from the stream.

    The replayed state is a pure function of the record stream plus the
    initial network, which is exactly what makes these checkers work
    identically on live runs and archived traces.
    """

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._adj: dict = {u: set() for u in network.nodes}
        self._n_edges = 0
        for u, v in network.edges():
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._n_edges += 1

    def _add_edge(self, u, v) -> bool:
        adj = self._adj
        # u == v: Network.apply_external skips self-loops; without the
        # guard the replay stored u in its own adjacency set and the
        # folded edge count diverged (PR 10 differential fix).
        if u not in adj or v not in adj or u == v or v in adj[u]:
            return False
        adj[u].add(v)
        adj[v].add(u)
        self._n_edges += 1
        return True

    def _drop_edge(self, u, v) -> bool:
        adj = self._adj
        if u not in adj or v not in adj[u]:
            return False
        adj[u].discard(v)
        adj[v].discard(u)
        self._n_edges -= 1
        return True

    def _apply_perturbation(self, record) -> None:
        """Fold an external strike (unconstrained by the model's rules).

        Event semantics mirror ``Network.apply_external`` exactly — the
        PR 10 hypothesis differential (tests/test_replay_differential.py)
        pins the fold to the engine over random strike batches.  The two
        guards below were divergences it found: the engine never crashes
        the last remaining node, and it skips a join whose uid is
        already present *entirely* (a duplicate join must not attach
        edges to the existing node).
        """
        adj = self._adj
        for u in record.crashes:
            if u not in adj or len(adj) <= 1:
                continue
            for v in adj.pop(u):
                adj[v].discard(u)
                self._n_edges -= 1
        for u, v in record.drops:
            self._drop_edge(u, v)
        for uid, attach in record.joins:
            if uid in adj:
                continue
            adj[uid] = set()
            for v in attach:
                self._add_edge(uid, v)
        for u, v in record.adds:
            self._add_edge(u, v)

    def fold_round(self, record) -> None:
        """Fold one round's effective sets (no legality checking)."""
        for u, v in record.activations:
            self._add_edge(u, v)
        for u, v in record.deactivations:
            self._drop_edge(u, v)

    def snapshot(self) -> tuple:
        """The replayed graph as ``(nodes, edges)`` lists — the baseline
        the next chained segment replays against."""
        adj = self._adj
        nodes = list(adj)
        edges = [(u, v) for u, nbrs in adj.items() for v in nbrs if _le(u, v)]
        return nodes, edges


class ConnectivityChecker(_EdgeReplay):
    """The active graph stays connected after every round and strike.

    Connectivity is recomputed from the replayed adjacency, never
    trusted from the record's ``connected`` flag (which is ``True``
    whenever the run had no ``check_connectivity`` guard) — the checker
    must catch a disconnection the engine itself was not asked to watch
    for, e.g. a mis-behaving adversary claiming a safe policy.

    Incremental: activations fold into a union-find; only rounds with
    deactivations (and external strikes) pay a full recompute.
    """

    name = "connectivity"

    # A third union-find next to the engine's ConnectivityTracker /
    # DenseConnectivityTracker is deliberate: those fold live Network
    # state, while this one folds the *record stream* over a replayed
    # adjacency (including offline traces, where no Network exists) —
    # trusting an engine tracker would defeat the audit.

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._rebuild()

    def _rebuild(self) -> None:
        self._parent = {u: u for u in self._adj}
        self._components = len(self._adj)
        for u, neighbors in self._adj.items():
            for v in neighbors:
                self._union(u, v)

    def _find(self, x):
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def _union(self, u, v) -> None:
        ru, rv = self._find(u), self._find(v)
        if ru != rv:
            self._parent[rv] = ru
            self._components -= 1

    def on_round(self, record) -> None:
        for u, v in record.activations:
            self._add_edge(u, v)
        for u, v in record.deactivations:
            self._drop_edge(u, v)
        if record.deactivations:
            self._rebuild()
        else:
            for u, v in record.activations:
                if u in self._parent and v in self._parent:
                    self._union(u, v)
        if self._components > 1:
            self._fail(f"{self._where(record.round)}: network disconnected")

    def on_perturbation(self, record) -> None:
        self._apply_perturbation(record)
        self._rebuild()
        if self._components > 1:
            self._fail(
                f"segment {self._segment}: adversary strike before round "
                f"{record.round} disconnected the network"
            )


class TemporalLegalityChecker(_EdgeReplay):
    """Every effective set is legal against the replayed history.

    Checks, per round: activations target non-adjacent node pairs at
    distance exactly 2 *at the beginning of the round*; deactivations
    target currently active edges; and the committed
    ``active_edges`` / ``activated_edges`` counters match the replayed
    edge set (the tamper check).
    """

    name = "temporal-legality"

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._activated: set = set()  # activated-only edges (E(i) \ E(1))

    def on_round(self, record) -> None:
        adj = self._adj
        where = self._where(record.round)
        # Canonical-order iteration: failure details are emitted in
        # sorted-edge order, deterministically — set iteration order is
        # not, and the array checkers must reproduce these strings
        # byte-for-byte (the PR 10 verdict-equality contract).
        acts = sorted_edges(record.activations)
        deacts = sorted_edges(record.deactivations)
        for u, v in acts:
            if u not in adj or v not in adj:
                self._fail(
                    f"{where}: activation ({_lbl(u)}, {_lbl(v)}) names an "
                    f"unknown node"
                )
            elif u == v:
                self._fail(f"{where}: activated self-loop ({_lbl(u)}, {_lbl(v)})")
            elif v in adj[u]:
                self._fail(
                    f"{where}: activated already-active edge ({_lbl(u)}, {_lbl(v)})"
                )
            elif adj[u].isdisjoint(adj[v]):
                self._fail(
                    f"{where}: activated ({_lbl(u)}, {_lbl(v)}) but endpoints "
                    f"are not at distance 2"
                )
        for u, v in deacts:
            if u not in adj or v not in adj[u]:
                self._fail(
                    f"{where}: deactivated inactive edge ({_lbl(u)}, {_lbl(v)})"
                )
        for u, v in acts:
            if self._add_edge(u, v):
                self._activated.add((u, v) if _le(u, v) else (v, u))
        for u, v in deacts:
            if self._drop_edge(u, v):
                self._activated.discard((u, v) if _le(u, v) else (v, u))
        if record.active_edges != self._n_edges:
            self._fail(
                f"{where}: active_edges says {record.active_edges}, "
                f"replay says {self._n_edges}"
            )
        if record.activated_edges != len(self._activated):
            self._fail(
                f"{where}: activated_edges says {record.activated_edges}, "
                f"replay says {len(self._activated)}"
            )

    def on_perturbation(self, record) -> None:
        # External events fold into the baseline E(1) (Network.apply_external
        # semantics): adversary-created edges are not "activated" edges, and
        # dropped/crashed activated edges stop counting.
        self._apply_perturbation(record)
        activated = self._activated
        for u, v in record.drops:
            activated.discard((u, v) if _le(u, v) else (v, u))
        for u in record.crashes:
            for e in [e for e in activated if u in e]:
                activated.discard(e)


def _le(u, v) -> bool:
    try:
        return u <= v
    except TypeError:
        return repr(u) <= repr(v)


# ----------------------------------------------------------------------
# budget invariants (pure functions of the record stream + n)
# ----------------------------------------------------------------------


class RoundBoundChecker(InvariantChecker):
    """Per-segment round-count envelope ``bound_fn(n)``; flags online at
    the first round past the envelope."""

    def __init__(self, bound_fn, label: str) -> None:
        super().__init__()
        self._bound_fn = bound_fn
        self.name = label

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._bound = self._bound_fn(len(network.nodes))
        self._rounds = 0
        self._flagged = False

    def on_round(self, record) -> None:
        self._rounds += 1
        if self._rounds > self._bound and not self._flagged:
            self._flagged = True
            self._fail(
                f"segment {self._segment}: exceeded the {self._bound}-round "
                f"envelope at round {record.round}"
            )


class EdgeBudgetChecker(InvariantChecker):
    """Per-round activated-edge watermark budget ``bound_fn(n)``."""

    def __init__(self, bound_fn, label: str) -> None:
        super().__init__()
        self._bound_fn = bound_fn
        self.name = label

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._bound = self._bound_fn(len(network.nodes))
        self._flagged = False

    def on_round(self, record) -> None:
        if record.activated_edges > self._bound and not self._flagged:
            self._flagged = True
            self._fail(
                f"{self._where(record.round)}: {record.activated_edges} "
                f"activated edges exceed the budget {self._bound}"
            )


class TotalActivationChecker(InvariantChecker):
    """Per-segment cumulative total-activation budget ``bound_fn(n)``."""

    def __init__(self, bound_fn, label: str) -> None:
        super().__init__()
        self._bound_fn = bound_fn
        self.name = label

    def on_run_start(self, network) -> None:
        super().on_run_start(network)
        self._bound = self._bound_fn(len(network.nodes))
        self._total = 0
        self._flagged = False

    def on_round(self, record) -> None:
        self._total += len(record.activations)
        if self._total > self._bound and not self._flagged:
            self._flagged = True
            self._fail(
                f"{self._where(record.round)}: {self._total} cumulative "
                f"activations exceed the budget {self._bound}"
            )


# ----------------------------------------------------------------------
# the invariant registry
# ----------------------------------------------------------------------

#: Envelope constants, calibrated against the registry corpus (measured
#: extremes at n in 16..128: star <= 13.3 log2 n rounds, wreaths
#: <= 8.5 log2^2 n rounds, committee watermarks <= 2.4n, totals
#: <= 2.2 n log2 n; centralized strategies <= 1.5 log2 n rounds).  The
#: factor-2-ish headroom asserts the asymptotic shape without flaking.
BUDGETS: dict = {
    "rounds:log": lambda n: 24 * _log2ceil(n) + 40,
    "rounds:polylog": lambda n: 14 * _log2ceil(n) ** 2 + 80,
    "edges:linear": lambda n: 4 * n + 16,
    "edges:nlogn": lambda n: 4 * n * _log2ceil(n) + 32,
    # Note there is deliberately no "edges:quadratic": the activated-edge
    # watermark |E(i) \ E(1)| can never exceed C(n,2), so a quadratic
    # watermark budget would be vacuously green on every possible run.
    # The *cumulative* quadratic budget below is falsifiable (repeated
    # deactivate/reactivate cycles exceed it), so Theta(n^2) scenarios
    # declare that one.
    "activations:nlogn": lambda n: 5 * n * _log2ceil(n) + 40,
    "activations:quadratic": lambda n: n * (n - 1) // 2,
}

_BUDGET_CHECKERS = {
    "rounds": RoundBoundChecker,
    "edges": EdgeBudgetChecker,
    "activations": TotalActivationChecker,
}


def _use_arrays(arrays) -> bool:
    """Resolve the checker implementation choice (see make_checkers)."""
    if arrays is None:
        env = os.environ.get("REPRO_CHECKERS", "").strip().lower()
        if env in ("dict", "python"):
            return False
        arrays = True
    if not arrays:
        return False
    try:
        from . import conformance_arrays  # noqa: F401 (probe the numpy dep)
    except ImportError:
        return False
    return True


def make_checkers(invariants, *, arrays: bool | None = None) -> list:
    """Build one fresh checker per declared invariant name.

    Names are either structural (``connectivity``,
    ``temporal-legality``) or ``family:budget`` pairs resolved through
    :data:`BUDGETS` (e.g. ``rounds:log``, ``edges:nlogn``).

    ``arrays`` selects the structural checkers' implementation: the
    array-native ones from :mod:`repro.conformance_arrays` (``True``,
    and the default whenever numpy is importable) or the dict-based
    oracle ones defined here (``False``).  The default can be forced to
    the oracle with ``REPRO_CHECKERS=dict`` in the environment (the
    knob the verdict-equality suite and the bench gate use); verdicts
    are asserted equal either way, so the choice is a pure performance
    trade.  Budget checkers are O(1) per round and have one
    implementation.
    """
    if _use_arrays(arrays):
        from .conformance_arrays import (
            ArrayConnectivityChecker as connectivity_cls,
            ArrayTemporalLegalityChecker as legality_cls,
        )
    else:
        connectivity_cls = ConnectivityChecker
        legality_cls = TemporalLegalityChecker
    checkers: list = []
    for name in invariants:
        if name == "connectivity":
            checkers.append(connectivity_cls())
        elif name == "temporal-legality":
            checkers.append(legality_cls())
        else:
            family = name.split(":", 1)[0]
            cls = _BUDGET_CHECKERS.get(family)
            bound_fn = BUDGETS.get(name)
            if cls is None or bound_fn is None:
                known = ["connectivity", "temporal-legality", *sorted(BUDGETS)]
                raise ConfigurationError(
                    f"unknown invariant {name!r}; known invariants: {known}"
                )
            checkers.append(cls(bound_fn, name))
    return checkers


def verdict_columns(checkers) -> dict:
    """Sweep-row columns (``inv_<name>`` -> ``ok``/``FAIL: ...``)."""
    return {f"inv_{c.name}": c.verdict().cell for c in checkers}


def enforce(checkers, context: str = "") -> None:
    """Raise :class:`InvariantViolation` if any checker failed."""
    failed = [c.verdict() for c in checkers if not c.ok]
    if failed:
        lines = "; ".join(f"{v.invariant}: {v.detail}" for v in failed)
        prefix = f"{context}: " if context else ""
        raise InvariantViolation(f"{prefix}invariant(s) violated — {lines}")


# ----------------------------------------------------------------------
# offline replay: audit an archived trace with the same checkers
# ----------------------------------------------------------------------


def check_trace(graph, trace, checkers, *, baselines: str = "chained") -> list:
    """Replay ``trace`` (recorded on ``graph``) through ``checkers``.

    Events are fed in ``Trace.to_jsonl`` interleave order (each
    perturbation before the first round record it precedes), which is
    execution order for every engine-produced trace.  Returns the
    verdicts, one per checker.

    Multi-segment archives (a composition pipeline streamed through one
    ``JsonlSink``, where each stage's records restart at round 1) are
    re-segmented exactly as the live observers saw them: every round
    reset re-enters ``on_run_start``.  ``baselines`` selects what each
    new segment replays against:

    * ``"chained"`` (default, the pipeline contract): the replayed end
      state of the previous segment — each stage runs on the previous
      stage's final graph.
    * ``"restart"``: the initial ``graph`` again — for archives that
      concatenate *independent repeated runs* on the same input (e.g. a
      benchmark loop streaming through one sink), where chaining would
      be wrong.

    Two caveats.  A perturbed multi-segment trace raises
    :class:`ConfigurationError`: its flattened perturbation list loses
    the segment association, so it cannot be replayed faithfully.  A
    self-healing history (whose inter-episode strikes are applied
    outside any run and are deliberately absent from trace data) *will*
    parse, but its post-strike segments replay against a baseline the
    strike silently changed, so the audit conservatively reports
    legality failures — it flags what it cannot validate.  Audit heal
    scenarios per episode, live.
    """
    _check_baselines(baselines)
    segments = _split_segments(trace)
    _reject_multisegment_perts(len(segments), len(trace.perturbations))
    initial = _ReplayNetwork(graph.nodes(), graph.edges())
    net = initial
    perts = sorted(trace.perturbations, key=lambda p: p.round)
    pi = 0
    for si, records in enumerate(segments):
        for c in checkers:
            c.on_run_start(net)
        # The baseline tracker (array replay when numpy is available)
        # only runs when a later segment will consume its end state:
        # single-segment archives — every large-n audit — skip the fold
        # entirely, and restart mode never folds.
        fold = baselines == "chained" and si + 1 < len(segments)
        tracker = _make_tracker() if fold else None
        if tracker is not None:
            tracker.on_run_start(net)
        for rec in records:
            while pi < len(perts) and perts[pi].round <= rec.round:
                for c in checkers:
                    c.on_perturbation(perts[pi])
                if tracker is not None:
                    tracker._apply_perturbation(perts[pi])
                pi += 1
            for c in checkers:
                c.on_round_start(rec.round)
                c.on_round(rec)
            if tracker is not None:
                tracker.fold_round(rec)
        # The replayed end state is the next segment's initial network
        # (chained); restart mode replays every segment on the input.
        if tracker is not None:
            net = _ReplayNetwork(*tracker.snapshot())
        else:
            net = initial
    for pert in perts[pi:]:
        for c in checkers:
            c.on_perturbation(pert)
    for c in checkers:
        c.on_run_end(None)
    return [c.verdict() for c in checkers]


def _split_segments(trace) -> list:
    """Partition records into run segments (see
    :func:`repro.engine.trace.split_segments`)."""
    return split_segments(trace.records)


def _check_baselines(baselines: str) -> None:
    if baselines not in ("chained", "restart"):
        raise ConfigurationError(
            f"baselines must be 'chained' or 'restart', got {baselines!r}"
        )


def _reject_multisegment_perts(n_segments: int, n_perts: int) -> None:
    if n_segments > 1 and n_perts:
        raise ConfigurationError(
            "cannot audit a multi-segment trace with perturbations offline: "
            "the flattened perturbation list loses its segment association "
            "(self-healing histories audit per episode, live)"
        )


# ----------------------------------------------------------------------
# parallel offline replay: fan per-segment audits across a process pool
# ----------------------------------------------------------------------


def check_trace_parallel(
    graph, source, invariants, *, jobs: int | None = None,
    baselines: str = "chained",
) -> list:
    """Audit an archived trace with per-segment parallelism.

    ``source`` is a :class:`Trace`, or a path to either archive format
    (sniffed by content: ``.rtb`` binary or JSONL).  ``invariants`` are
    registry names as on :func:`make_checkers` — names, not instances,
    because each worker builds its own checkers.  ``jobs`` bounds the
    process pool (default: the CPU count; ``1`` audits inline with no
    pool at all, the honest single-core path).

    Verdicts are **identical to the serial** ``check_trace`` for the
    same ``baselines`` mode, by construction: every worker replays one
    segment with its checkers' segment counter pre-offset (failure
    strings match serially-produced ones), and the parent re-merges
    per-segment failures in segment order under the same
    ``_MAX_DETAILS`` cap and suppressed-count accounting the serial
    accumulator applies.  Binary archives are where the parallelism
    pays: workers seek straight to their segment through the index
    footer and decode only what they audit.  In ``"chained"`` mode the
    parent must still fold each segment's edge delta (cheap relative to
    checking, which rebuilds connectivity per deactivation round)
    before dispatching the next; ``"restart"`` mode dispatches all
    segments immediately.
    """
    _check_baselines(baselines)
    names = list(invariants)
    probe = make_checkers(names)  # validates the names in the parent
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))

    segment_sources, segment_streams, n_segments = _segment_plan(source)
    initial = (list(graph.nodes()), [tuple(e) for e in graph.edges()])

    tasks = _baseline_tasks(
        initial, segment_sources, segment_streams, n_segments, names, baselines
    )
    if jobs == 1 or n_segments == 1:
        results = [_audit_segment_task(task) for task in tasks]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, n_segments)) as pool:
            # Submission is pipelined: each baseline fold (chained mode)
            # happens while earlier segments are already auditing.
            futures = [pool.submit(_audit_segment_task, task) for task in tasks]
            results = [f.result() for f in futures]
    return _merge_segment_results(probe, results)


def _segment_plan(source):
    """Split ``source`` into per-segment record streams.

    Returns ``(segment_sources, segment_streams, n_segments)`` where
    ``segment_sources[i]`` is the picklable worker handle and
    ``segment_streams[i]()`` lazily yields the segment's records in the
    parent (for baseline folding).
    """
    from .engine.tracebin import BinaryTraceReader, is_binary_trace

    if isinstance(source, (str, os.PathLike)) and is_binary_trace(source):
        path = os.fspath(source)
        with BinaryTraceReader(path) as reader:
            segments = reader.segments
        _reject_multisegment_perts(
            len(segments), sum(s.n_perturbations for s in segments)
        )
        n = len(segments)

        def stream(i):
            def run():
                with BinaryTraceReader(path) as r:
                    yield from r.iter_segment(i, arrays=True)

            return run

        return (
            [("rtb", path, i) for i in range(n)],
            [stream(i) for i in range(n)],
            n,
        )

    trace = source if isinstance(source, Trace) else Trace.from_jsonl(source)
    segments = _split_segments(trace)
    _reject_multisegment_perts(len(segments), len(trace.perturbations))
    perts = sorted(trace.perturbations, key=lambda p: p.round)
    streams = _interleave_segments(segments, perts)
    return (
        [("mem", stream) for stream in streams],
        [(lambda s=stream: iter(s)) for stream in streams],
        len(segments),
    )


def _interleave_segments(segments, perts) -> list:
    """Materialize per-segment event lists in serial replay order (each
    perturbation before the first round record it precedes; trailing
    perturbations end the last segment)."""
    streams = []
    pi = 0
    for si, records in enumerate(segments):
        events: list = []
        for rec in records:
            while pi < len(perts) and perts[pi].round <= rec.round:
                events.append(perts[pi])
                pi += 1
            events.append(rec)
        if si == len(segments) - 1:
            events.extend(perts[pi:])
        streams.append(events)
    return streams


def _baseline_tasks(
    initial, segment_sources, segment_streams, n_segments, names, baselines
):
    """Yield one worker task per segment, folding chained baselines
    between yields so submission can pipeline."""
    nodes, edges = initial
    for i in range(n_segments):
        yield (segment_sources[i], i, nodes, edges, names)
        if baselines == "chained" and i + 1 < n_segments:
            tracker = _make_tracker()
            tracker.on_run_start(_ReplayNetwork(nodes, edges))
            for item in segment_streams[i]():
                if isinstance(item, PerturbationRecord):
                    tracker._apply_perturbation(item)
                else:
                    tracker.fold_round(item)
            nodes, edges = tracker.snapshot()


def _make_tracker():
    """A baseline-fold tracker: the array replay when numpy is
    available, the dict replay otherwise.  Both fold identically (the
    array tracker shares the dict fold for perturbations outright)."""
    if _use_arrays(None):
        from .conformance_arrays import ArrayReplayTracker

        return ArrayReplayTracker()
    return _EdgeReplay()


def _audit_segment_task(task):
    """Worker: replay one segment, return raw failure accounting per
    checker (in :func:`make_checkers` order)."""
    (kind, *payload), seg_index, nodes, edges, names = task
    if kind == "rtb":
        from .engine.tracebin import BinaryTraceReader

        path, i = payload
        reader = BinaryTraceReader(path)
        # Array rounds feed the array checkers natively; every consumer
        # sees the RoundRecord field surface either way.
        stream = reader.iter_segment(i, arrays=True)
    else:
        reader = None
        (stream,) = payload
    checkers = make_checkers(names)
    net = _ReplayNetwork(nodes, edges)
    for c in checkers:
        # Offset so failure strings carry the archive-global segment
        # number, matching serial output exactly.
        c._segment = seg_index
        c.on_run_start(net)
    try:
        for item in stream:
            if isinstance(item, PerturbationRecord):
                for c in checkers:
                    c.on_perturbation(item)
            else:
                for c in checkers:
                    c.on_round_start(item.round)
                    c.on_round(item)
    finally:
        if reader is not None:
            reader.close()
    for c in checkers:
        c.on_run_end(None)
    return [(list(c._failures), c._suppressed) for c in checkers]


def _merge_segment_results(probe, results) -> list:
    """Deterministically merge per-segment failure accounting into the
    verdicts serial replay would report: concatenate failures in segment
    order under the ``_MAX_DETAILS`` cap, roll everything past the cap
    (and each worker's own suppressed count) into ``+N more``."""
    verdicts = []
    for j, checker in enumerate(probe):
        failures: list = []
        suppressed = 0
        for per_segment in results:
            seg_failures, seg_suppressed = per_segment[j]
            for detail in seg_failures:
                if len(failures) < _MAX_DETAILS:
                    failures.append(detail)
                else:
                    suppressed += 1
            suppressed += seg_suppressed
        detail = "; ".join(failures)
        if suppressed:
            detail += f"; +{suppressed} more"
        verdicts.append(Verdict(checker.name, not failures, detail))
    return verdicts


class _ReplayNetwork:
    """The minimal network surface checkers read at ``on_run_start``."""

    def __init__(self, nodes, edges) -> None:
        self.nodes = frozenset(nodes)
        self._edges = tuple(edges)

    def edges(self):
        return iter(self._edges)
