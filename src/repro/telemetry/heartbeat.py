"""One heartbeat line format for every long-running surface.

The telemetry observer's round heartbeat, ``repro sweep --progress``,
and the tier presets all render through :func:`format_heartbeat`, so a
user watching stderr sees one consistent shape whether the unit is
rounds or sweep cells::

    [wreath/ring n=100000] 1200/4700 rounds (26%) elapsed 41.3s live=3180
    [sweep] 3/12 cells (25%) elapsed 61.2s star/ring n=100000 seed=0
"""

from __future__ import annotations


def format_heartbeat(
    label: str,
    done: int,
    total: int | None = None,
    *,
    elapsed_s: float = 0.0,
    unit: str = "",
    extra: str = "",
) -> str:
    """Render one heartbeat line (no trailing newline).

    ``total`` may be None/0 when the bound is unknown (then no
    percentage is shown); ``unit`` names what is being counted
    ("rounds", "cells"); ``extra`` is free-form trailing detail.
    """
    if total:
        head = f"{done}/{total}"
        pct = f" ({100.0 * done / total:.0f}%)"
    else:
        head = str(done)
        pct = ""
    suffix = f" {unit}" if unit else ""
    line = f"[{label}] {head}{suffix}{pct} elapsed {elapsed_s:.1f}s"
    if extra:
        line = f"{line} {extra}"
    return line
