"""The ``BENCH_engine.json`` schema: versioned engine-benchmark rows.

Schema v2 (``repro-bench-engine/2``) extends the v1 wall/RSS rows with
the paper's own measures and a provenance stamp::

    {"scenario": "wreath", "n": 8192, "backend": "bulk",
     "wall_ms": 11253.7, "peak_rss_kb": 200476,
     "rounds": 16389, "activations": 24571,
     "phases": [...per-phase breakdown rows or null...],
     "provenance": {"git_sha": ..., "python": ..., "numpy": ...,
                    "platform": ..., "backend": "bulk"}}

:func:`read_bench` is the compat reader: v1 files load fine, their rows
normalized to the v2 shape with the new fields as None — so a CI
archive written before the migration merges cleanly with fresh rows.
Perf gates still read their anchors from constants, never from this
file, so a stale row can never relax a gate.
"""

from __future__ import annotations

import json
import os

#: Current schema tag (written by :func:`write_bench`).
BENCH_SCHEMA = "repro-bench-engine/2"
#: The legacy wall/RSS-only schema (still readable).
BENCH_SCHEMA_V1 = "repro-bench-engine/1"

#: v2 fields absent from v1 rows, with their normalized defaults.
_V2_FIELDS = ("rounds", "activations", "phases", "provenance")


def bench_row(
    scenario: str,
    n: int,
    backend: str,
    wall_ms: float,
    peak_rss_kb: int | None = None,
    *,
    rounds: int | None = None,
    activations: int | None = None,
    phases: list | None = None,
    provenance: dict | None = None,
    **extra,
) -> dict:
    """One normalized v2 row (the merge key is (scenario, n, backend)).

    Extra keyword fields (e.g. archive-size measures) ride along in the
    row; :func:`normalize_row` preserves unknown keys, so they survive
    merges and compat reads.
    """
    row = {
        "scenario": scenario,
        "n": int(n),
        "backend": backend,
        "wall_ms": round(float(wall_ms), 1),
        "peak_rss_kb": None if peak_rss_kb is None else int(peak_rss_kb),
        "rounds": None if rounds is None else int(rounds),
        "activations": None if activations is None else int(activations),
        "phases": phases,
        "provenance": provenance,
    }
    row.update(extra)
    return row


def sweep_totals(rows) -> tuple[int, int]:
    """Combined ``(rounds, activations)`` across sweep rows.

    For BENCH rows that record one wall over a whole sweep (e.g. the
    xlarge tier smoke), the paper measures are still separable: sum them
    from the per-cell sweep rows instead of recording ``null``.
    """
    return (
        sum(int(row["rounds"]) for row in rows),
        sum(int(row["total_activations"]) for row in rows),
    )


def normalize_row(row: dict) -> dict:
    """A v1 or v2 row dict, completed to the v2 shape (missing fields
    become None; extra keys are preserved)."""
    out = dict(row)
    out.setdefault("peak_rss_kb", None)
    for name in _V2_FIELDS:
        out.setdefault(name, None)
    return out


def row_key(row: dict) -> tuple:
    return (row["scenario"], int(row["n"]), row["backend"])


def read_bench(path) -> list[dict]:
    """Rows of a BENCH_engine.json file (v1 or v2), normalized to v2.

    Raises ``ValueError`` on an unknown schema tag, ``OSError`` when the
    file is absent/unreadable.
    """
    with open(os.fspath(path)) as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema not in (BENCH_SCHEMA, BENCH_SCHEMA_V1):
        raise ValueError(
            f"unknown BENCH schema {schema!r}; expected "
            f"{BENCH_SCHEMA!r} or {BENCH_SCHEMA_V1!r}"
        )
    return [normalize_row(row) for row in payload.get("rows", [])]


def write_bench(path, rows: list) -> None:
    """Write rows as a v2 file, sorted by (scenario, n, backend)."""
    ordered = sorted((normalize_row(r) for r in rows), key=row_key)
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema": BENCH_SCHEMA, "rows": ordered}, indent=2) + "\n")


def merge_bench(path, new_rows: list) -> list[dict]:
    """Merge fresh rows into the file (fresh rows win on key collision,
    previous rows — v1 or v2 — survive), write v2, return all rows."""
    merged = {row_key(normalize_row(r)): normalize_row(r) for r in new_rows}
    try:
        for row in read_bench(path):
            merged.setdefault(row_key(row), row)
    except (OSError, ValueError, KeyError, TypeError):
        pass  # absent, unreadable, or foreign file: start fresh
    rows = [merged[k] for k in sorted(merged)]
    write_bench(path, rows)
    return rows
