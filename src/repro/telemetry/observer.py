"""TelemetryObserver: low-overhead per-round instrumentation.

The observer rides the existing :class:`~repro.engine.observers.RoundObserver`
stream for everything the record stream already carries (round
boundaries, activations, perturbations, segment starts) and adds two
hot-path probes the stream cannot see:

* ``bind_runner(runner, limit=)`` — called once per run by the runner
  before ``on_run_start``; captures backend, population size, the round
  limit (the heartbeat's progress bound), and the program family's
  optional ``PhaseKernel.phase_of`` for per-phase accounting.
* ``probe_round(round_no, live=, due=, dispatch=, acts=, ...)`` — called
  at the very end of each executed round by all three backends with the
  round's activation counts plus the occupancy the observer cannot
  reconstruct: live-set size, the bulk backend's due-filter (wake-set)
  size and per-cause wake-condition hit counts, and which dispatch path
  ran (pernode / sparse / kernel).

The runner discovers the probe by the ``telemetry_probe`` class marker;
with no telemetry attached every probe site is one ``is None`` test per
round — the same compiled-out idiom as the adversary hook — so the
disabled path is byte-identical to an unobserved run (gated by
``benchmarks/test_p7_telemetry.py``).

Probes are also *removed* from the per-round record stream: the runner
routes only non-probe observers through ``on_round_start``/``on_round``,
so a profile-only run never pays ``RoundRecord`` construction (the
frozenset copies dominate telemetry's own cost on the bulk backend's
microsecond-scale rounds).  Everything a sample needs arrives through
``probe_round`` itself, which also does its own timing: round ``k``'s
wall time is end-of-round ``k-1`` → end-of-round ``k`` (round 1 from
``on_run_start``), so each round is charged its full body including
post-record bookkeeping — public-record commits, wake propagation,
barrier sweeps — while boundary work between rounds (adversary
application, loop control) lands on the round it precedes.

On a host with no probe wiring (the centralized executor) the observer
falls back to sampling off the record stream alone — rounds are then
timed ``on_round_start(k)`` → ``on_round_start(k+1)`` and labeled with
the ``unprobed`` dispatch, with no occupancy data.

Aggregation is O(1) per round (see :mod:`repro.telemetry.profile`);
``keep_samples=True`` additionally records the raw per-round sample
stream for tests.
"""

from __future__ import annotations

import heapq
import resource
import sys
from time import perf_counter

from ..engine.observers import RoundObserver
from .heartbeat import format_heartbeat
from .profile import WAKE_CAUSES, RunProfile, _round_stats
from .provenance import build_provenance

#: Dispatch label for rounds no probe reported (centralized executor).
DISPATCH_UNPROBED = "unprobed"


def _phase_of_for(runner):
    """The population's ``phase_of`` mapping, when one kernel declares it.

    Populations are uniform on the kernel paths that matter; the first
    program's class speaks for the fleet (a mixed population simply
    falls back to the single "all" phase row).
    """
    programs = getattr(runner, "programs", None)
    if not programs:
        return None
    prog = next(iter(programs.values()))
    kernel = getattr(type(prog), "phase_kernel", None)
    if kernel is None:
        return None
    return getattr(kernel, "phase_of", None)


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB.

    ``getrusage().ru_maxrss`` is kilobytes on Linux but *bytes* on
    macOS/BSD, so the raw reading would overreport 1024x off-Linux;
    normalize here so ``RunProfile.peak_rss`` and the ``prof_*`` sweep
    columns are comparable across platforms.
    """
    raw = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        return raw // 1024
    return raw


# Backwards-compatible private alias (pre-fix internal name).
_rss_kb = peak_rss_kb


class TelemetryObserver(RoundObserver):
    """Collects per-round samples into per-segment :class:`RunProfile`\\ s.

    One instance follows a multi-segment result (pipeline stages,
    self-healing episodes) exactly like every other observer: each
    ``on_run_start`` opens a new segment, each ``on_run_end`` finalizes
    it into :attr:`segments`; :meth:`profile` merges them.

    Parameters
    ----------
    heartbeat_every:
        Emit a progress heartbeat at most once per this many rounds
        (0 disables).  Combined with ``heartbeat_min_interval_s`` the
        effective cadence is "check every N rounds, print at most every
        T seconds".
    heartbeat_min_interval_s:
        Minimum seconds between heartbeat lines.
    heartbeat_min_rounds:
        Minimum rounds between heartbeat lines (0 disables).  Emitting
        requires *both* gates: enough wall time *and* enough rounds
        since the previous line.  Microsecond-round cells at n = 10⁶
        would otherwise re-test the wall clock every round and flood
        stderr whenever the wall throttle is loose or disabled.
    heartbeat_stream:
        File-like the heartbeat writes to (default: current stderr,
        resolved at emit time).
    heartbeat_label:
        The ``[label]`` prefix of heartbeat lines.
    rss_every:
        Sample ``getrusage`` peak RSS every this many rounds (0 keeps
        only the end-of-segment reading).
    slowest_k:
        How many slowest rounds to keep per segment.
    keep_samples:
        Record the raw per-round sample stream (tests only; production
        profiling stays O(1) memory).
    """

    #: Runner-side discovery marker (see module docstring).
    telemetry_probe = True

    def __init__(
        self,
        *,
        heartbeat_every: int = 0,
        heartbeat_min_interval_s: float = 0.0,
        heartbeat_min_rounds: int = 0,
        heartbeat_stream=None,
        heartbeat_label: str = "telemetry",
        rss_every: int = 64,
        slowest_k: int = 5,
        keep_samples: bool = False,
    ) -> None:
        self.heartbeat_every = int(heartbeat_every)
        self.heartbeat_min_interval_s = float(heartbeat_min_interval_s)
        self.heartbeat_min_rounds = int(heartbeat_min_rounds)
        self.heartbeat_stream = heartbeat_stream
        self.heartbeat_label = heartbeat_label
        self.rss_every = int(rss_every)
        self.slowest_k = int(slowest_k)
        self.keep_samples = keep_samples
        #: Finalized per-segment profiles, in execution order.
        self.segments: list = []
        #: Raw per-segment sample lists (``keep_samples=True`` only);
        #: one ``(round, dt_s, live, due, dispatch, acts, deacts)``
        #: tuple per executed round.
        self.samples: list = []
        self._next_info: dict | None = None
        self._open = False
        self._hb_last = 0.0
        self._hb_last_round = 0

    # -- probe protocol (called by the runners, not the record stream) --

    def bind_runner(self, runner, limit: int | None = None) -> None:
        """Pre-run probe: capture runner-side facts for the next segment."""
        self._next_info = {
            "backend": getattr(runner, "backend", None),
            "n": runner.network.n,
            "limit": limit,
            "phase_of": _phase_of_for(runner),
        }

    def probe_round(
        self,
        round_no: int,
        *,
        live: int | None = None,
        due: int | None = None,
        dispatch: str = "pernode",
        acts: int = 0,
        deacts: int = 0,
        msg_wakes: int = 0,
        rebind_wakes: int = 0,
        adj_wakes: int = 0,
        barrier_wakes: int = 0,
    ) -> None:
        """End-of-round probe: timing, occupancy and dispatch of ``round_no``."""
        now = perf_counter()
        self._probed = True
        if msg_wakes:
            self._wake["message"] += msg_wakes
        if rebind_wakes:
            self._wake["rebind"] += rebind_wakes
        if adj_wakes:
            self._wake["adjacency"] += adj_wakes
        if barrier_wakes:
            self._wake["barrier"] += barrier_wakes
        self._record(round_no, now, live, due, dispatch, acts, deacts)

    def probe_wake(self, cause: str, count: int) -> None:
        """Out-of-round wake accounting (bulk perturbation sweep)."""
        self._wake[cause] += count

    # -- observer hooks -------------------------------------------------

    def on_run_start(self, network) -> None:
        if self._open:
            # Defensive: a segment that never saw on_run_end (the run
            # raised) still finalizes rather than leaking into the next.
            self._finalize_segment(perf_counter())
        info = self._next_info or {}
        self._next_info = None
        self._backend = info.get("backend")
        self._n = info.get("n", getattr(network, "n", None))
        self._limit = info.get("limit")
        self._phase_of = info.get("phase_of")
        self._open = True
        # Round numbers restart at 1 for each segment; the round gate
        # must restart with them (the wall gate deliberately does not:
        # rapid segment turnover should not print per segment).
        self._hb_last_round = 0
        self._rounds = 0
        self._time_sum = 0.0
        self._min_us = float("inf")
        self._max_us = 0.0
        self._hist: dict = {}
        self._slowest: list = []
        self._dispatch: dict = {}
        self._wake = dict.fromkeys(WAKE_CAUSES, 0)
        self._acts = 0
        self._deacts = 0
        self._live_sum = 0
        self._live_min = None
        self._live_max = 0
        self._live_n = 0
        self._due_sum = 0
        self._due_min = None
        self._due_max = 0
        self._due_n = 0
        self._perts = 0
        self._rss_peak = 0
        self._rss_n = 0
        self._phases: dict = {}
        self._probed = False
        self._pending: int | None = None
        self._pending_acts = 0
        self._pending_deacts = 0
        self._last_live: int | None = None
        if self.keep_samples:
            self._seg_samples: list = []
            self.samples.append(self._seg_samples)
        self._t_prev = perf_counter()

    # The record-stream hooks below are the unprobed-host fallback; a
    # probed runner never routes them here (see module docstring).

    def on_round_start(self, round_no: int) -> None:
        if self._probed:
            return
        now = perf_counter()
        if self._pending is not None:
            self._record(
                self._pending, now, None, None, DISPATCH_UNPROBED,
                self._pending_acts, self._pending_deacts,
            )
        self._pending = round_no
        self._pending_acts = 0
        self._pending_deacts = 0
        self._t_prev = now

    def on_round(self, record) -> None:
        if self._probed:
            return
        self._pending_acts = len(record.activations)
        self._pending_deacts = len(record.deactivations)

    def on_perturbation(self, record) -> None:
        self._perts += 1

    def on_run_end(self, metrics) -> None:
        self._finalize_segment(perf_counter())

    # -- sample lifecycle -----------------------------------------------

    def _record(
        self,
        round_no: int,
        now: float,
        live: int | None,
        due: int | None,
        dispatch: str,
        acts: int,
        deacts: int,
    ) -> None:
        dt = now - self._t_prev
        self._t_prev = now
        us = dt * 1e6
        self._rounds += 1
        self._time_sum += dt
        if us < self._min_us:
            self._min_us = us
        if us > self._max_us:
            self._max_us = us
        bucket = int(us).bit_length()
        self._hist[bucket] = self._hist.get(bucket, 0) + 1
        slowest = self._slowest
        if len(slowest) < self.slowest_k:
            heapq.heappush(slowest, (us, round_no))
        elif us > slowest[0][0]:
            heapq.heapreplace(slowest, (us, round_no))
        self._acts += acts
        self._deacts += deacts
        if live is not None:
            self._live_sum += live
            self._live_n += 1
            if self._live_min is None or live < self._live_min:
                self._live_min = live
            if live > self._live_max:
                self._live_max = live
            self._last_live = live
        if due is not None:
            self._due_sum += due
            self._due_n += 1
            if self._due_min is None or due < self._due_min:
                self._due_min = due
            if due > self._due_max:
                self._due_max = due
        self._dispatch[dispatch] = self._dispatch.get(dispatch, 0) + 1
        phase_of = self._phase_of
        pos = phase_of(round_no)[1] if phase_of is not None else -1
        entry = self._phases.get(pos)
        if entry is None:
            entry = self._phases[pos] = [0, 0.0, 0]
        entry[0] += 1
        entry[1] += dt
        entry[2] += acts
        rss_every = self.rss_every
        if rss_every and self._rounds % rss_every == 0:
            rss = _rss_kb()
            self._rss_n += 1
            if rss > self._rss_peak:
                self._rss_peak = rss
        if self.keep_samples:
            self._seg_samples.append(
                (round_no, dt, live, due, dispatch, acts, deacts)
            )
        every = self.heartbeat_every
        if (
            every
            and round_no % every == 0
            and round_no - self._hb_last_round >= self.heartbeat_min_rounds
            and now - self._hb_last >= self.heartbeat_min_interval_s
        ):
            self._hb_last = now
            self._hb_last_round = round_no
            self._emit_heartbeat(round_no)

    def _finalize_segment(self, now: float) -> None:
        if self._pending is not None:
            self._record(
                self._pending, now, None, None, DISPATCH_UNPROBED,
                self._pending_acts, self._pending_deacts,
            )
            self._pending = None
        self._open = False
        rss = _rss_kb()
        self._rss_n += 1
        if rss > self._rss_peak:
            self._rss_peak = rss
        rounds = self._rounds
        hist = {str(1 << b if b else 1): c for b, c in sorted(self._hist.items())}
        phases = []
        total_ms = self._time_sum * 1e3 or 1.0
        for pos in sorted(self._phases):
            cnt, secs, acts = self._phases[pos]
            wall_ms = secs * 1e3
            phases.append({
                "phase": "all" if pos < 0 else f"r{pos}",
                "rounds": cnt,
                "wall_ms": round(wall_ms, 3),
                "share": round(wall_ms / total_ms, 3),
                "mean_us": round(secs * 1e6 / max(cnt, 1), 1),
                "activations": acts,
            })
        profile = RunProfile(
            backend=self._backend,
            n=self._n,
            rounds=rounds,
            wall_s=self._time_sum,
            round_us=_round_stats(
                rounds, self._time_sum,
                0.0 if self._min_us == float("inf") else self._min_us,
                self._max_us, hist,
            ),
            histogram_us=hist,
            slowest=[
                [r, round(us, 1)]
                for us, r in sorted(self._slowest, key=lambda p: -p[0])
            ],
            dispatch=self._dispatch,
            live=(
                {
                    "min": self._live_min,
                    "mean": self._live_sum / self._live_n,
                    "max": self._live_max,
                    "count": self._live_n,
                }
                if self._live_n
                else None
            ),
            due=(
                {
                    "min": self._due_min,
                    "mean": self._due_sum / self._due_n,
                    "max": self._due_max,
                    "count": self._due_n,
                }
                if self._due_n
                else None
            ),
            wake_hits={k: v for k, v in self._wake.items() if v},
            activations=self._acts,
            deactivations=self._deacts,
            perturbations=self._perts,
            rss={"samples": self._rss_n, "peak_kb": self._rss_peak},
            phases=phases,
            provenance=build_provenance(self._backend),
            segments=1,
        )
        self.segments.append(profile)

    # -- results ---------------------------------------------------------

    def profile(self) -> RunProfile:
        """The merged profile of every finished segment."""
        if self._open:
            # A still-open segment (caller asked mid-run, or the run
            # raised): snapshot what we have.
            self._finalize_segment(perf_counter())
        return RunProfile.merge(self.segments)

    def samples_by_segment(self) -> list:
        """Raw per-segment sample streams (``keep_samples=True`` only)."""
        return self.samples

    # -- heartbeat --------------------------------------------------------

    def _emit_heartbeat(self, round_no: int) -> None:
        stream = self.heartbeat_stream
        if stream is None:
            stream = sys.stderr
        extra = f"live={self._last_live}" if self._last_live is not None else ""
        print(
            format_heartbeat(
                self.heartbeat_label,
                round_no,
                self._limit,
                elapsed_s=self._time_sum,
                unit="rounds",
                extra=extra,
            ),
            file=stream,
        )
