"""Runtime telemetry & profiling (see DESIGN.md, "Telemetry & profiling").

Public surface:

* :class:`TelemetryObserver` — per-round instrumentation riding the
  observer stream plus runner-side probes (``bind_runner`` /
  ``probe_round`` / ``probe_wake``).
* :class:`RunProfile` — the bounded-size aggregate (histograms,
  extremes, per-phase breakdown, provenance) with JSON export.
* :func:`profile_columns` — flat ``prof_*`` sweep-row columns.
* :func:`format_heartbeat` — the one heartbeat line format shared by
  round heartbeats and ``repro sweep --progress``.
* :func:`build_provenance` / :func:`git_sha` — the measurement stamp.
* :mod:`repro.telemetry.bench` — the versioned ``BENCH_engine.json``
  schema (v2 writer, v1 compat reader).
"""

from .heartbeat import format_heartbeat
from .observer import TelemetryObserver
from .profile import (
    PROFILE_SCHEMA,
    WAKE_CAUSES,
    RunProfile,
    percentile_from_hist,
    profile_columns,
)
from .provenance import build_provenance, git_sha

__all__ = [
    "PROFILE_SCHEMA",
    "RunProfile",
    "TelemetryObserver",
    "WAKE_CAUSES",
    "build_provenance",
    "format_heartbeat",
    "git_sha",
    "percentile_from_hist",
    "profile_columns",
]
