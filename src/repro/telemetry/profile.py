"""RunProfile: the aggregated output of one profiled execution.

A :class:`RunProfile` is what :class:`~repro.telemetry.TelemetryObserver`
reduces its per-round samples to — bounded-size aggregates (sums,
extremes, a power-of-two latency histogram, top-k slowest rounds, a
per-phase breakdown) rather than the sample stream itself, so profiling
a 10^6-round run costs O(1) memory.  Percentiles are derived from the
histogram (the reported value is the bucket's upper bound), which is the
price of never materializing the samples; mean/min/max are exact.

Profiles serialize to JSON (schema ``repro-run-profile/1``), merge
across run segments (composition-pipeline stages, self-healing
episodes), and render as table rows for the CLI (``--profile``) and as
``prof_*`` sweep columns (``repro sweep --profile``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Schema tag stamped into every exported profile.
PROFILE_SCHEMA = "repro-run-profile/1"

#: The wake causes the bulk backend accounts per round (DESIGN.md,
#: "Phase kernels & bulk backend"): a received message, a neighbor
#: re-binding its public record, an adjacency change at the node, a
#: barrier, or an external perturbation.
WAKE_CAUSES = ("message", "rebind", "adjacency", "barrier", "perturbation")


def percentile_from_hist(histogram: dict, quantile: float) -> float:
    """The upper bound of the histogram bucket holding the quantile.

    ``histogram`` maps stringified power-of-two upper bounds (in µs) to
    counts.  Returns 0.0 for an empty histogram.
    """
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    target = quantile * total
    seen = 0
    for upper in sorted(histogram, key=int):
        seen += histogram[upper]
        if seen >= target:
            return float(upper)
    return float(max((int(u) for u in histogram), default=0))


@dataclass
class RunProfile:
    """Bounded-size aggregate of one profiled run (or merged segments)."""

    backend: str | None = None
    n: int | None = None
    rounds: int = 0
    #: Total wall time spent inside sampled rounds, in seconds.
    wall_s: float = 0.0
    #: Per-round wall time stats in µs: mean/min/max exact, p50/p90 are
    #: histogram bucket upper bounds.
    round_us: dict = field(default_factory=dict)
    #: Power-of-two latency histogram: str(upper_bound_us) -> count.
    histogram_us: dict = field(default_factory=dict)
    #: Top-k slowest rounds as ``[round_no, us]`` pairs, slowest first.
    slowest: list = field(default_factory=list)
    #: Rounds per dispatch path: pernode / sparse / kernel / unprobed.
    dispatch: dict = field(default_factory=dict)
    #: Live-set occupancy stats ({min, mean, max}) or None (unprobed).
    live: dict | None = None
    #: Wake-set (due-filter) occupancy stats, bulk sparse path only.
    due: dict | None = None
    #: Wake-condition hit counts per cause (bulk backend only).
    wake_hits: dict = field(default_factory=dict)
    activations: int = 0
    deactivations: int = 0
    perturbations: int = 0
    #: Periodic ``getrusage`` peak-RSS readings: {samples, peak_kb}.
    rss: dict | None = None
    #: Per-phase breakdown rows keyed off ``PhaseKernel.phase_of`` (one
    #: "all" row when the program family declares no phase structure).
    phases: list = field(default_factory=list)
    #: Reproducibility stamp: git sha, python/numpy versions, platform.
    provenance: dict = field(default_factory=dict)
    #: How many run segments (pipeline stages / episodes) were merged.
    segments: int = 1
    schema: str = PROFILE_SCHEMA

    # -- serialization -------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "backend": self.backend,
            "n": self.n,
            "rounds": self.rounds,
            "wall_s": self.wall_s,
            "round_us": self.round_us,
            "histogram_us": self.histogram_us,
            "slowest": [list(pair) for pair in self.slowest],
            "dispatch": self.dispatch,
            "live": self.live,
            "due": self.due,
            "wake_hits": self.wake_hits,
            "activations": self.activations,
            "deactivations": self.deactivations,
            "perturbations": self.perturbations,
            "rss": self.rss,
            "phases": self.phases,
            "provenance": self.provenance,
            "segments": self.segments,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunProfile":
        if payload.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"not a {PROFILE_SCHEMA} payload: schema={payload.get('schema')!r}"
            )
        data = dict(payload)
        data["slowest"] = [list(pair) for pair in data.get("slowest", [])]
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, path=None) -> str:
        """Deterministic JSON (sorted keys); optionally written to ``path``."""
        payload = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(payload + "\n")
        return payload

    # -- merging (multi-segment results) -------------------------------

    @classmethod
    def merge(cls, profiles: list) -> "RunProfile":
        """Exact merge of per-segment profiles (percentiles recomputed
        from the merged histogram, like any single segment's)."""
        if not profiles:
            return cls(round_us=_round_stats(0, 0.0, 0.0, 0.0, {}))
        if len(profiles) == 1:
            return profiles[0]
        first = profiles[0]
        rounds = sum(p.rounds for p in profiles)
        wall = sum(p.wall_s for p in profiles)
        hist: dict = {}
        dispatch: dict = {}
        wake: dict = {}
        slowest: list = []
        acts = deacts = perts = 0
        phases: dict = {}
        live = _merge_occupancy([p.live for p in profiles])
        due = _merge_occupancy([p.due for p in profiles])
        lo = min((p.round_us.get("min", 0.0) for p in profiles if p.rounds), default=0.0)
        hi = max((p.round_us.get("max", 0.0) for p in profiles if p.rounds), default=0.0)
        rss_peak = 0
        rss_samples = 0
        for p in profiles:
            for k, v in p.histogram_us.items():
                hist[k] = hist.get(k, 0) + v
            for k, v in p.dispatch.items():
                dispatch[k] = dispatch.get(k, 0) + v
            for k, v in p.wake_hits.items():
                wake[k] = wake.get(k, 0) + v
            slowest.extend(p.slowest)
            acts += p.activations
            deacts += p.deactivations
            perts += p.perturbations
            if p.rss is not None:
                rss_peak = max(rss_peak, p.rss.get("peak_kb", 0))
                rss_samples += p.rss.get("samples", 0)
            for row in p.phases:
                agg = phases.setdefault(
                    row["phase"], {"phase": row["phase"], "rounds": 0,
                                   "wall_ms": 0.0, "activations": 0},
                )
                agg["rounds"] += row["rounds"]
                agg["wall_ms"] += row["wall_ms"]
                agg["activations"] += row["activations"]
        slowest.sort(key=lambda pair: -pair[1])
        k = max(len(first.slowest), 1)
        total_ms = sum(row["wall_ms"] for row in phases.values()) or 1.0
        merged_phases = []
        for label in sorted(phases):
            row = phases[label]
            row["wall_ms"] = round(row["wall_ms"], 3)
            row["share"] = round(row["wall_ms"] / total_ms, 3)
            row["mean_us"] = round(row["wall_ms"] * 1e3 / max(row["rounds"], 1), 1)
            merged_phases.append(row)
        return cls(
            backend=first.backend,
            n=first.n,
            rounds=rounds,
            wall_s=wall,
            round_us=_round_stats(rounds, wall, lo, hi, hist),
            histogram_us=hist,
            slowest=slowest[:k],
            dispatch=dispatch,
            live=live,
            due=due,
            wake_hits=wake,
            activations=acts,
            deactivations=deacts,
            perturbations=perts,
            rss={"samples": rss_samples, "peak_kb": rss_peak} if rss_samples else first.rss,
            phases=merged_phases,
            provenance=first.provenance,
            segments=sum(p.segments for p in profiles),
        )

    # -- presentation --------------------------------------------------

    def summary_row(self) -> dict:
        """One flat dict for the CLI's profile table."""
        row = {
            "backend": self.backend or "-",
            "rounds": self.rounds,
            "wall_ms": round(self.wall_s * 1e3, 1),
            "round_mean_us": round(self.round_us.get("mean", 0.0), 1),
            "round_p90_us": round(self.round_us.get("p90", 0.0), 1),
            "round_max_us": round(self.round_us.get("max", 0.0), 1),
            "dispatch": _dispatch_label(self.dispatch),
            "activations": self.activations,
            "perturbations": self.perturbations,
        }
        if self.live is not None:
            row["live_mean"] = round(self.live["mean"], 1)
        if self.due is not None:
            row["due_mean"] = round(self.due["mean"], 1)
        if self.wake_hits:
            row["wake_hits"] = _dispatch_label(self.wake_hits)
        if self.rss is not None:
            row["rss_peak_kb"] = self.rss["peak_kb"]
        return row

    def breakdown_table(self) -> list:
        """Per-phase rows for ``print_table`` (already in phase order)."""
        return [dict(row) for row in self.phases]


def _round_stats(rounds: int, wall_s: float, lo: float, hi: float, hist: dict) -> dict:
    if rounds == 0:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p90": 0.0}
    return {
        "mean": wall_s * 1e6 / rounds,
        "min": lo,
        "max": hi,
        "p50": percentile_from_hist(hist, 0.50),
        "p90": percentile_from_hist(hist, 0.90),
    }


def _merge_occupancy(stats: list) -> dict | None:
    present = [s for s in stats if s is not None]
    if not present:
        return None
    count = sum(s.get("count", 0) for s in present)
    if count == 0:
        return None
    return {
        "min": min(s["min"] for s in present),
        "max": max(s["max"] for s in present),
        "mean": sum(s["mean"] * s.get("count", 0) for s in present) / count,
        "count": count,
    }


def _dispatch_label(counts: dict) -> str:
    return "+".join(f"{k}:{v}" for k, v in sorted(counts.items()) if v)


def profile_columns(profile: RunProfile) -> dict:
    """Flat ``prof_*`` sweep-row columns (``repro sweep --profile``),
    living alongside the ``inv_*`` verdict columns."""
    cols = {
        "prof_wall_ms": round(profile.wall_s * 1e3, 2),
        "prof_round_mean_us": round(profile.round_us.get("mean", 0.0), 1),
        "prof_round_max_us": round(profile.round_us.get("max", 0.0), 1),
        "prof_dispatch": _dispatch_label(profile.dispatch),
    }
    if profile.live is not None:
        cols["prof_live_mean"] = round(profile.live["mean"], 1)
    if profile.due is not None:
        cols["prof_due_mean"] = round(profile.due["mean"], 1)
    if profile.rss is not None:
        cols["prof_rss_peak_kb"] = profile.rss["peak_kb"]
    return cols
