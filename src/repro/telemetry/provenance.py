"""Perf provenance: the stamp that makes a measurement comparable.

A wall-time or RSS number is meaningless next to another one unless both
record what produced them; every :class:`~repro.telemetry.RunProfile`
and every ``repro-bench-engine/2`` row carries this stamp (git sha,
python/numpy versions, platform, backend).
"""

from __future__ import annotations

import platform
import subprocess
from functools import lru_cache
from pathlib import Path


@lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The short sha of the working tree this package was imported from,
    or None (not a checkout, git unavailable)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a core dependency
        return None
    return numpy.__version__


def build_provenance(backend: str | None = None) -> dict:
    """The full provenance stamp for one measurement."""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "backend": backend,
    }
